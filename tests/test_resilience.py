"""Fault injection, retry, breaker, admission, cache integrity — and chaos.

The property suite at the bottom runs 200+ seeded fault plans through the
full engine/batch stack over small synthetic corpora and asserts the
degradation contract on every one: batch responses stay well-formed, no
item is silently dropped, and fault-free (or healed) items are
byte-identical to a no-fault run.  A smaller smoke sweep exercises all
seven seed domains.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.label import LabelAnalyzer
from repro.core.semantics import SemanticComparator
from repro.lexicon.data import build_default_wordnet
from repro.resilience import (
    INJECTION_POINTS,
    AdmissionController,
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpenError,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    OverloadedError,
    RetryPolicy,
    TransientFault,
    active_scope,
    fault_scope,
    maybe_inject,
)
from repro.schema.serialize import corpus_to_dict
from repro.service.cache import LRUCache, ResultCache
from repro.service.engine import LabelingEngine
from repro.testing.chaos import run_chaos_sweep
from repro.testing.oracles import canonical_response

from .conftest import build_group_corpus

#: A backoff curve that keeps the suite fast without changing semantics.
FAST_RETRY = RetryPolicy(base_delay_s=0.0005, max_delay_s=0.002)


@pytest.fixture(scope="module")
def chaos_comparator():
    """A module-private comparator: ``mutate_lexicon`` faults land on a
    lexicon no other test module shares."""
    return SemanticComparator(LabelAnalyzer(build_default_wordnet()))


def small_corpus_payloads() -> list[dict]:
    """Three little corpora (the paper's table shapes) as request payloads."""
    table2 = {
        "aa": {"c_adult": "Adults", "c_child": "Children"},
        "ba": {"c_adult": "Adult", "c_child": "Child", "c_infant": "Infant"},
        "ca": {"c_senior": "Seniors", "c_adult": "Adults", "c_child": "Children"},
    }
    table3 = {
        "100auto": {"c_state": "State", "c_city": "City"},
        "ads": {"c_state": "State", "c_city": "City"},
        "cars": {"c_zip": "Zip Code", "c_distance": "Distance"},
    }
    table4 = {
        "aa": {"c_stops": "NonStop", "c_airline": "Choose an Airline"},
        "msn": {"c_class": "Class", "c_airline": "Airline"},
        "alldest": {"c_class": "Class of Ticket", "c_airline": "Preferred Airline"},
    }
    payloads = []
    for rows, clusters in (
        (table2, ["c_senior", "c_adult", "c_child", "c_infant"]),
        (table3, ["c_state", "c_city", "c_zip", "c_distance"]),
        (table4, ["c_stops", "c_class", "c_airline"]),
    ):
        interfaces, mapping = build_group_corpus(rows, clusters)
        payloads.append({"corpus": corpus_to_dict(interfaces, mapping)})
    return payloads


# ----------------------------------------------------------------------
# FaultPlan: deterministic selection.
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_selection_is_deterministic(self):
        def run() -> list[tuple[str, str]]:
            plan = FaultPlan(
                [FaultSpec(point="engine.execute", kind="error", rate=0.5,
                           max_fires=None)],
                seed=7,
            )
            fired = []
            for key in (f"k{i}" for i in range(40)):
                hit = plan.fires("engine.execute", key)
                if hit is not None:
                    fired.append((hit[1].point, hit[1].key))
            return fired

        first, second = run(), run()
        assert first == second
        assert 0 < len(first) < 40  # rate 0.5 selects some, not all

    def test_selection_independent_of_call_order(self):
        def fired_keys(keys) -> set[str]:
            plan = FaultPlan(
                [FaultSpec(point="cache.get", kind="corrupt", rate=0.4,
                           max_fires=None)],
                seed=3,
            )
            return {k for k in keys if plan.fires("cache.get", k)}

        keys = [f"key-{i}" for i in range(30)]
        assert fired_keys(keys) == fired_keys(reversed(keys))

    def test_rate_bounds(self):
        always = FaultPlan(
            [FaultSpec(point="pipeline.merge", kind="latency", rate=1.0,
                       max_fires=None)]
        )
        never = FaultPlan(
            [FaultSpec(point="pipeline.merge", kind="latency", rate=0.0)]
        )
        assert all(always.fires("pipeline.merge", f"k{i}") for i in range(10))
        assert not any(never.fires("pipeline.merge", f"k{i}") for i in range(10))

    def test_max_fires_budget_heals(self):
        plan = FaultPlan(
            [FaultSpec(point="engine.execute", kind="error", rate=1.0,
                       max_fires=2)]
        )
        hits = [plan.fires("engine.execute", "same-key") for _ in range(4)]
        assert [h is not None for h in hits] == [True, True, False, False]
        # Budgets are per key: a different key gets its own two.
        assert plan.fires("engine.execute", "other-key") is not None

    def test_wrong_point_never_fires(self):
        plan = FaultPlan(
            [FaultSpec(point="engine.execute", kind="error", rate=1.0)]
        )
        assert plan.fires("lexicon.query", "k") is None

    def test_wildcard_point(self):
        plan = FaultPlan([FaultSpec(point="*", kind="latency", rate=1.0,
                                    max_fires=None)])
        for point in INJECTION_POINTS:
            assert plan.fires(point, "k") is not None

    def test_random_plan_is_reproducible(self):
        a, b = FaultPlan.random(11, rate=0.2), FaultPlan.random(11, rate=0.2)
        assert [(s.point, s.kind) for s in a.specs] == [
            (s.point, s.kind) for s in b.specs
        ]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(point="engine.execute", kind="explode")
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(point="engine.execute", kind="error", rate=1.5)

    def test_stats_accounting(self):
        plan = FaultPlan(
            [FaultSpec(point="engine.execute", kind="error", rate=1.0,
                       max_fires=None)],
            seed=5,
        )
        for i in range(3):
            plan.fires("engine.execute", f"k{i}")
        stats = plan.stats()
        assert stats["injected"] == 3
        assert stats["by_kind"] == {"error": 3}
        assert stats["by_point"] == {"engine.execute": 3}


# ----------------------------------------------------------------------
# Fault scope + maybe_inject.
# ----------------------------------------------------------------------


class TestMaybeInject:
    def test_no_scope_is_a_noop(self):
        assert active_scope() is None
        assert maybe_inject("engine.execute") is None

    def test_none_plan_scope_is_a_noop(self):
        with fault_scope(None, "key") as scope:
            assert scope is None
            assert maybe_inject("engine.execute") is None

    def test_error_kind_raises_injected_fault(self):
        plan = FaultPlan(
            [FaultSpec(point="engine.execute", kind="error", rate=1.0)]
        )
        with fault_scope(plan, "item-1") as scope:
            with pytest.raises(InjectedFault) as excinfo:
                maybe_inject("engine.execute")
            assert isinstance(excinfo.value, TransientFault)
            assert excinfo.value.event.point == "engine.execute"
        assert [e.kind for e in scope.events] == ["error"]

    def test_latency_kind_sleeps(self):
        plan = FaultPlan(
            [FaultSpec(point="pipeline.merge", kind="latency", rate=1.0,
                       latency_s=0.02)]
        )
        with fault_scope(plan, "item"):
            start = time.perf_counter()
            spec = maybe_inject("pipeline.merge")
            assert spec is not None and spec.kind == "latency"
            assert time.perf_counter() - start >= 0.015

    def test_corrupt_kind_returned_to_call_site(self):
        plan = FaultPlan([FaultSpec(point="cache.get", kind="corrupt", rate=1.0)])
        with fault_scope(plan, "item"):
            spec = maybe_inject("cache.get")
        assert spec.kind == "corrupt"  # no exception: caller applies it

    def test_mutate_lexicon_bumps_version_without_changing_queries(self):
        wordnet = build_default_wordnet()
        before = wordnet.version
        assert wordnet.is_hypernym("location", "city")
        plan = FaultPlan(
            [FaultSpec(point="pipeline.phase3", kind="mutate_lexicon", rate=1.0)]
        )
        with fault_scope(plan, "item"):
            maybe_inject("pipeline.phase3", wordnet=wordnet)
        assert wordnet.version > before
        assert wordnet.is_hypernym("location", "city")  # semantics intact

    def test_scopes_are_thread_local(self):
        plan = FaultPlan(
            [FaultSpec(point="engine.execute", kind="error", rate=1.0)]
        )
        seen = {}

        def worker():
            seen["other-thread"] = active_scope()

        with fault_scope(plan, "item"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert active_scope() is not None
        assert seen["other-thread"] is None


# ----------------------------------------------------------------------
# Retry policy.
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_success_first_try(self):
        value, attempts = FAST_RETRY.call(lambda: 42)
        assert (value, attempts) == (42, 1)

    def test_transient_failure_heals(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientFault("blip")
            return "ok"

        value, attempts = FAST_RETRY.call(flaky, sleep=lambda _s: None)
        assert (value, attempts) == ("ok", 3)

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("systematic")

        with pytest.raises(ValueError):
            FAST_RETRY.call(broken, sleep=lambda _s: None)
        assert calls["n"] == 1

    def test_exhaustion_reraises_with_attempt_count(self):
        def always_fails():
            raise TransientFault("permanent")

        with pytest.raises(TransientFault) as excinfo:
            FAST_RETRY.call(always_fails, sleep=lambda _s: None)
        assert excinfo.value.retry_attempts == FAST_RETRY.max_attempts

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=1.0,
                             jitter=0.25)
        d1, d2 = policy.delay_for(2, "key-a"), policy.delay_for(2, "key-a")
        assert d1 == d2
        nominal = 0.2
        assert nominal * 0.75 <= d1 <= nominal * 1.25
        # distinct keys de-synchronize
        assert policy.delay_for(2, "key-b") != d1

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=10.0, max_delay_s=0.3,
                             jitter=0.0)
        assert policy.delay_for(5) == 0.3


# ----------------------------------------------------------------------
# Circuit breaker.
# ----------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def make(self, threshold=3, reset=10.0):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=threshold, reset_after_s=reset,
                                 clock=clock)
        return breaker, clock

    def test_trips_after_threshold(self):
        breaker, __ = self.make(threshold=3)
        for __ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.retry_after() > 0

    def test_success_resets_the_failure_streak(self):
        breaker, __ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_success_closes(self):
        breaker, clock = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now += 11
        assert breaker.allow()  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.now += 11
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.stats()["trips"] == 2

    def test_policy_builds_independent_breakers(self):
        policy = BreakerPolicy(failure_threshold=2, reset_after_s=5.0)
        a, b = policy.build(), policy.build()
        a.record_failure()
        a.record_failure()
        assert a.state == CircuitBreaker.OPEN
        assert b.state == CircuitBreaker.CLOSED


# ----------------------------------------------------------------------
# Admission control.
# ----------------------------------------------------------------------


class TestAdmissionController:
    def test_sheds_when_queue_full(self):
        admission = AdmissionController(max_concurrent=1, max_queue=0,
                                        retry_after_s=0.25)
        assert admission.acquire()
        assert not admission.acquire()  # no slot, no queue -> shed
        with pytest.raises(OverloadedError) as excinfo:
            with admission.admit():
                pass
        assert excinfo.value.retry_after == 0.25
        admission.release()
        stats = admission.stats()
        assert stats["admitted"] == 1 and stats["shed"] == 2

    def test_queued_request_proceeds_after_release(self):
        admission = AdmissionController(max_concurrent=1, max_queue=4)
        assert admission.acquire()
        got_in = threading.Event()

        def queued():
            with admission.admit():
                got_in.set()

        thread = threading.Thread(target=queued)
        thread.start()
        time.sleep(0.05)
        assert not got_in.is_set()  # waiting in the queue
        admission.release()
        thread.join(timeout=2)
        assert got_in.is_set()

    def test_admit_releases_on_exception(self):
        admission = AdmissionController(max_concurrent=1, max_queue=0)
        with pytest.raises(RuntimeError, match="boom"):
            with admission.admit():
                raise RuntimeError("boom")
        assert admission.stats()["active"] == 0
        assert admission.acquire()  # the slot came back


# ----------------------------------------------------------------------
# Result cache integrity.
# ----------------------------------------------------------------------


class TestResultCacheIntegrity:
    def test_roundtrip(self):
        cache = ResultCache(capacity=4)
        cache.put("k", {"ok": True, "fingerprint": "k", "field_labels": {"c": "x"}})
        assert cache.get("k")["ok"] is True
        assert cache.stats().corruptions == 0

    def test_corrupted_entry_is_evicted_and_missed(self):
        cache = ResultCache(capacity=4)
        value = {"ok": True, "fingerprint": "k", "field_labels": {"c": "x"}}
        cache.put("k", value)
        assert cache.corrupt("k")
        assert cache.get("k") is None  # never served
        assert "k" not in cache
        stats = cache.stats()
        assert stats.corruptions == 1
        assert stats.misses >= 1

    def test_recompute_after_corruption_restores_entry(self):
        cache = ResultCache(capacity=4)
        value = {"ok": True, "fingerprint": "k"}
        cache.put("k", value)
        cache.corrupt("k")
        assert cache.get("k") is None
        cache.put("k", value)  # the engine's recompute path
        assert cache.get("k") == value

    def test_corrupt_missing_key_is_false(self):
        assert ResultCache(capacity=4).corrupt("absent") is False

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("k", {"ok": True})
        assert cache.get("k") is None

    def test_lru_eviction_still_applies(self):
        cache = ResultCache(capacity=2)
        for key in ("a", "b", "c"):
            cache.put(key, {"fingerprint": key})
        assert cache.get("a") is None
        assert cache.get("c")["fingerprint"] == "c"
        assert cache.stats().evictions == 1

    def test_plain_lru_unchanged(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1  # no checksumming on the base class


# ----------------------------------------------------------------------
# Engine + resilience, end to end.
# ----------------------------------------------------------------------


class TestEngineResilience:
    def payload(self):
        return small_corpus_payloads()[0]

    def test_transient_fault_heals_and_carries_provenance(self, chaos_comparator):
        baseline = canonical_response(
            LabelingEngine(cache_size=0, comparator=chaos_comparator).label(
                self.payload()
            )
        )
        plan = FaultPlan(
            [FaultSpec(point="engine.execute", kind="error", rate=1.0,
                       max_fires=1)]
        )
        engine = LabelingEngine(cache_size=0, fault_plan=plan, retry=FAST_RETRY,
                                comparator=chaos_comparator)
        response = engine.label(self.payload())
        assert response["ok"]
        assert response["resilience"]["attempts"] == 2
        assert response["resilience"]["faults"] == [
            {"point": "engine.execute", "kind": "error"}
        ]
        assert canonical_response(response) == baseline

    def test_no_fault_response_has_no_resilience_key(self, chaos_comparator):
        plan = FaultPlan(
            [FaultSpec(point="engine.execute", kind="error", rate=0.0)]
        )
        engine = LabelingEngine(cache_size=0, fault_plan=plan, retry=FAST_RETRY,
                                comparator=chaos_comparator)
        assert "resilience" not in engine.label(self.payload())

    def test_permanent_fault_degrades_with_provenance(self, chaos_comparator):
        plan = FaultPlan(
            [FaultSpec(point="pipeline.merge", kind="error", rate=1.0,
                       max_fires=None)]
        )
        engine = LabelingEngine(cache_size=0, fault_plan=plan, retry=FAST_RETRY,
                                comparator=chaos_comparator)
        [entry] = engine.label_batch([self.payload()])
        assert entry["ok"] is False
        assert entry["error_type"] == "transient"
        assert entry["resilience"]["attempts"] == FAST_RETRY.max_attempts
        assert all(
            f == {"point": "pipeline.merge", "kind": "error"}
            for f in entry["resilience"]["faults"]
        )

    def test_fault_free_items_in_faulted_batch_are_byte_identical(
        self, chaos_comparator
    ):
        payloads = small_corpus_payloads()
        plain = LabelingEngine(cache_size=0, comparator=chaos_comparator)
        baseline = [canonical_response(plain.label(p)) for p in payloads]
        plan = FaultPlan.random(seed=4, rate=0.3, max_fires=1)
        engine = LabelingEngine(cache_size=8, fault_plan=plan, retry=FAST_RETRY,
                                comparator=chaos_comparator)
        responses = engine.label_batch(payloads, jobs=2)
        assert len(responses) == len(payloads)
        for response, expected in zip(responses, baseline):
            assert response["ok"], response
            assert canonical_response(response) == expected

    def test_breaker_opens_per_fingerprint(self, chaos_comparator):
        plan = FaultPlan(
            [FaultSpec(point="pipeline.merge", kind="error", rate=1.0,
                       max_fires=None)]
        )
        clock = FakeClock()
        engine = LabelingEngine(
            cache_size=0,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=1),
            breaker=BreakerPolicy(failure_threshold=2, reset_after_s=30.0),
            comparator=chaos_comparator,
            clock=clock,
        )
        failing, healthy = small_corpus_payloads()[:2]
        for __ in range(2):
            with pytest.raises(TransientFault):
                engine.label(failing)
        with pytest.raises(CircuitOpenError) as excinfo:
            engine.label(failing)
        assert excinfo.value.retry_after > 0
        # The other corpus has its own breaker: it faults (plan hits every
        # fingerprint) but is not short-circuited.
        with pytest.raises(TransientFault):
            engine.label(healthy)
        stats = engine.stats()["resilience"]["breakers"]
        assert stats["open"] >= 1 and stats["rejections"] >= 1

    def test_breaker_recovers_after_reset_window(self, chaos_comparator):
        plan = FaultPlan(
            [FaultSpec(point="engine.execute", kind="error", rate=1.0,
                       max_fires=2)]
        )
        clock = FakeClock()
        engine = LabelingEngine(
            cache_size=0,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=1),
            breaker=BreakerPolicy(failure_threshold=2, reset_after_s=10.0),
            comparator=chaos_comparator,
            clock=clock,
        )
        payload = self.payload()
        for __ in range(2):
            with pytest.raises(TransientFault):
                engine.label(payload)
        with pytest.raises(CircuitOpenError):
            engine.label(payload)
        clock.now += 11  # window elapses; the fault budget is exhausted too
        response = engine.label(payload)  # the half-open probe succeeds
        assert response["ok"]
        assert engine.stats()["resilience"]["breakers"]["open"] == 0

    def test_batch_classifies_circuit_open(self, chaos_comparator):
        plan = FaultPlan(
            [FaultSpec(point="pipeline.merge", kind="error", rate=1.0,
                       max_fires=None)]
        )
        engine = LabelingEngine(
            cache_size=0,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=1),
            breaker=BreakerPolicy(failure_threshold=1, reset_after_s=30.0),
            comparator=chaos_comparator,
        )
        payload = self.payload()
        # Same payload twice, sequentially: the first trips, the second is
        # rejected by the open breaker.
        entries = engine.label_batch([payload, payload], jobs=1)
        assert entries[0]["error_type"] == "transient"
        assert entries[1]["error_type"] == "circuit_open"
        assert entries[1]["retry_after"] > 0

    def test_corrupt_cache_fault_recomputes_identical(self, chaos_comparator):
        payload = self.payload()
        # max_fires=2: the first fire lands before anything is cached (a
        # no-op); the second tampers with the stored entry.
        plan = FaultPlan(
            [FaultSpec(point="cache.get", kind="corrupt", rate=1.0, max_fires=2)]
        )
        engine = LabelingEngine(cache_size=8, fault_plan=plan, retry=FAST_RETRY,
                                comparator=chaos_comparator)
        first = engine.label(payload)
        assert first["cached"] is False
        # The corrupt fault fires on this lookup; the checksum catches it
        # and the entry is recomputed rather than served.
        second = engine.label(payload)
        assert second["cached"] is False
        assert engine.cache.stats().corruptions == 1
        assert canonical_response(second) == canonical_response(first)
        third = engine.label(payload)  # fault budget spent: a clean hit now
        assert third["cached"] is True

    def test_mutate_lexicon_fault_is_semantically_inert(self):
        # Private comparator: the junk synset stays in this test.
        comparator = SemanticComparator(LabelAnalyzer(build_default_wordnet()))
        payload = self.payload()
        baseline = canonical_response(
            LabelingEngine(cache_size=0, comparator=comparator).label(payload)
        )
        version_before = comparator.wordnet.version
        plan = FaultPlan(
            [FaultSpec(point="pipeline.phase3", kind="mutate_lexicon", rate=1.0)]
        )
        engine = LabelingEngine(cache_size=0, fault_plan=plan, retry=FAST_RETRY,
                                comparator=comparator)
        response = engine.label(payload)
        assert comparator.wordnet.version > version_before  # memo invalidation ran
        assert response["resilience"]["faults"] == [
            {"point": "pipeline.phase3", "kind": "mutate_lexicon"}
        ]
        assert canonical_response(response) == baseline

    def test_verify_strict_counts_oracle_checks(self, chaos_comparator):
        engine = LabelingEngine(cache_size=0, verify="strict",
                                comparator=chaos_comparator)
        assert engine.label(self.payload())["ok"]
        oracle = engine.stats()["resilience"]["oracle"]
        assert oracle["checks"] > 0 and oracle["failures"] == 0

    def test_verify_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="verify"):
            LabelingEngine(verify="paranoid")


# ----------------------------------------------------------------------
# The chaos property suite: 200+ seeded plans over small corpora.
# ----------------------------------------------------------------------


class TestChaosProperty:
    def test_two_hundred_seeded_plans_uphold_the_contract(self, chaos_comparator):
        report = run_chaos_sweep(
            plans=200,
            seed=1000,
            rate=0.15,
            jobs=2,
            payloads=small_corpus_payloads(),
            cache_size=8,
            comparator=chaos_comparator,
            latency_s=0.0005,
            retry=FAST_RETRY,
        )
        assert report["anomalies"] == []
        assert report["items"] == 200 * 3
        # Every response is accounted for: ok + failed covers every item.
        assert report["ok_items"] + report["failed_items"] == report["items"]
        # The sweep actually exercised the machinery.
        assert report["injected_faults"] > 0
        assert report["recovered_items"] > 0
        # Every successful item reproduced the no-fault labeling exactly.
        assert report["identical_items"] == report["ok_items"]

    def test_sweep_is_reproducible(self):
        # Determinism holds for identical initial state: a fresh lexicon per
        # run and sequential execution.  (``lexicon.query`` faults fire on
        # memo *misses*, so a pre-warmed comparator or thread interleaving
        # legitimately changes how many injection opportunities arrive.)
        def sweep():
            return run_chaos_sweep(
                plans=12,
                seed=77,
                rate=0.25,
                jobs=1,
                payloads=small_corpus_payloads(),
                cache_size=8,
                comparator=SemanticComparator(
                    LabelAnalyzer(build_default_wordnet())
                ),
                latency_s=0.0005,
                retry=FAST_RETRY,
            )

        first, second = sweep(), sweep()
        assert first["per_plan"] == second["per_plan"]
        assert first["injected_faults"] == second["injected_faults"]
        assert first["anomalies"] == second["anomalies"] == []


class TestChaosSmokeAllDomains:
    def test_seed_domain_smoke_sweep(self, chaos_comparator):
        """<=10 plans over all seven seed domains (the tier-1 smoke)."""
        report = run_chaos_sweep(
            plans=5,
            seed=0,
            rate=0.1,
            jobs=2,
            cache_size=16,
            comparator=chaos_comparator,
            latency_s=0.0005,
            retry=FAST_RETRY,
        )
        assert report["anomalies"] == []
        assert report["items_per_plan"] == 7
        assert report["identical_items"] == report["ok_items"]


# ----------------------------------------------------------------------
# HTTP load shedding + client backpressure.
# ----------------------------------------------------------------------


class TestHTTPBackpressure:
    def test_shed_returns_429_with_retry_after(self):
        from repro.service.client import ServiceClient, ServiceError
        from repro.service.server import LabelingServer

        with LabelingServer(
            port=0, max_concurrent=1, max_queue=0, retry_after_s=0.2
        ) as server:
            client = ServiceClient(server.url, retries=0)
            errors: list[Exception] = []

            def hit():
                try:
                    client.label(domain="job", seed=0)
                except Exception as exc:  # noqa: BLE001 - collected for asserts
                    errors.append(exc)

            threads = [threading.Thread(target=hit) for __ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            shed = [
                e for e in errors
                if isinstance(e, ServiceError) and e.status == 429
            ]
            assert shed, "no request was shed at concurrency 1 / queue 0"
            sample = shed[0]
            assert sample.payload["error_type"] == "overloaded"
            assert sample.payload["retry_after"] == 0.2
            assert sample.retry_after_header is not None
            metrics = client.metrics()
            assert metrics["admission"]["shed"] >= len(shed)
            assert metrics["http"]["by_status"].get("429", 0) >= len(shed)

    def test_client_retries_through_shedding(self):
        from repro.service.client import ServiceClient
        from repro.service.server import LabelingServer

        with LabelingServer(
            port=0, max_concurrent=1, max_queue=0, retry_after_s=0.05
        ) as server:
            # Saturate the slot from a background thread, then watch a
            # retrying client get through once the slot frees.
            blocker = ServiceClient(server.url, retries=0)
            done = threading.Event()

            def occupy():
                try:
                    blocker.batch([{"domain": "auto", "seed": 0}], jobs=1)
                except Exception:  # noqa: BLE001 - may itself be shed; fine
                    pass
                finally:
                    done.set()

            thread = threading.Thread(target=occupy)
            thread.start()
            client = ServiceClient(server.url, retries=8, backoff_s=0.05)
            response = client.label(domain="job", seed=0)
            assert response["ok"]
            assert client.last_attempts >= 1
            thread.join(timeout=10)
            assert done.is_set()
