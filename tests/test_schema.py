"""QueryInterface measures, clusters/mapping, 1:m reduction, group partition,
serialization round trips."""

from __future__ import annotations

import pytest

from repro.schema.clusters import Cluster, Mapping
from repro.schema.groups import GroupKind, partition_clusters
from repro.schema.interface import FieldKind, QueryInterface, make_field, make_group
from repro.schema.serialize import (
    interface_from_dict,
    interface_to_dict,
    load_corpus,
    mapping_from_dict,
    mapping_to_dict,
    save_corpus,
)
from repro.schema.tree import SchemaNode


class TestQueryInterface:
    @pytest.fixture()
    def interface(self):
        fields = [
            make_field("Adults", cluster="c_adult", name="f1"),
            make_field(None, cluster="c_child", name="f2"),
        ]
        group = make_group("Passengers", fields, name="g1")
        extra = make_field("Promo", cluster="c_promo", name="f3")
        return QueryInterface("qi", SchemaNode(None, [group, extra], name="r"))

    def test_counts(self, interface):
        assert interface.leaf_count() == 3
        assert interface.internal_node_count() == 1
        assert interface.depth() == 3

    def test_labeling_quality_excludes_root(self, interface):
        # 4 non-root nodes, 3 labeled.
        assert interface.labeling_quality() == pytest.approx(3 / 4)

    def test_field_lookup(self, interface):
        assert interface.field_by_name("f1").label == "Adults"
        with pytest.raises(KeyError):
            interface.field_by_name("g1")  # internal node is not a field
        with pytest.raises(KeyError):
            interface.field_by_name("missing")

    def test_validates_on_construction(self):
        bad = SchemaNode(None, [SchemaNode("x")])
        bad.children[0].parent = None
        with pytest.raises(ValueError):
            QueryInterface("bad", bad)


class TestCluster:
    def test_labels_first_seen_order_distinct(self):
        cluster = Cluster("c")
        cluster.add("a", make_field("Adults"))
        cluster.add("b", make_field("Adult"))
        cluster.add("c", make_field("Adults"))
        cluster.add("d", make_field(None))
        assert cluster.labels() == ["Adults", "Adult"]
        assert cluster.frequency() == 4

    def test_duplicate_interface_rejected(self):
        cluster = Cluster("c")
        cluster.add("a", make_field("X"))
        with pytest.raises(ValueError):
            cluster.add("a", make_field("Y"))

    def test_instances_union_filtered_by_label(self):
        cluster = Cluster("c")
        cluster.add("a", make_field("Class", instances=("First", "Economy")))
        cluster.add("b", make_field("Flight Class", instances=("Economy", "Business")))
        assert cluster.instances_union() == {"First", "Economy", "Business"}
        assert cluster.instances_union("Class") == {"First", "Economy"}

    def test_label_of(self):
        cluster = Cluster("c")
        cluster.add("a", make_field("X"))
        cluster.add("b", make_field(None))
        assert cluster.label_of("a") == "X"
        assert cluster.label_of("b") is None
        assert cluster.label_of("missing") is None


class TestOneToManyExpansion:
    """The paper's Passengers example (Section 2.1 / Figure 2)."""

    def _build(self):
        passengers = make_field(
            "Passengers", instances=("1", "2", "3"), name="vac:passengers"
        )
        root = SchemaNode(None, [make_group(None, [passengers], name="vac:g")],
                          name="vac:r")
        vacations = QueryInterface("vacations", root)

        adults = make_field("Adults", name="aa:adults")
        children = make_field("Children", name="aa:children")
        aa_root = SchemaNode(
            None, [make_group(None, [adults, children], name="aa:g")], name="aa:r"
        )
        aa = QueryInterface("aa", aa_root)

        mapping = Mapping()
        mapping.assign("c_adult", "aa", adults)
        mapping.assign("c_child", "aa", children)
        mapping.assign("c_adult", "vacations", passengers)
        mapping.assign("c_child", "vacations", passengers)
        return [vacations, aa], mapping

    def test_expansion_creates_internal_node(self):
        interfaces, mapping = self._build()
        records = mapping.expand_one_to_many(interfaces)
        assert len(records) == 1
        record = records[0]
        assert record.field_label == "Passengers"
        assert set(record.clusters) == {"c_adult", "c_child"}
        # The Passengers leaf became an internal node with unlabeled children.
        vacations = interfaces[0]
        expanded = vacations.root.find_by_name("vac:passengers")
        assert expanded.is_internal
        assert expanded.label == "Passengers"
        assert all(not child.is_labeled for child in expanded.children)

    def test_mapping_becomes_one_to_one(self):
        interfaces, mapping = self._build()
        mapping.expand_one_to_many(interfaces)
        mapping.validate_one_to_one()
        for cluster_name in ("c_adult", "c_child"):
            member = mapping[cluster_name].members["vacations"]
            assert member.is_leaf and member.cluster == cluster_name

    def test_one_to_one_fields_get_cluster_attribute(self):
        interfaces, mapping = self._build()
        mapping.expand_one_to_many(interfaces)
        aa = interfaces[1]
        assert aa.root.find_by_name("aa:adults").cluster == "c_adult"

    def test_validate_detects_unreduced(self):
        interfaces, mapping = self._build()
        with pytest.raises(ValueError, match="in both"):
            mapping.validate_one_to_one()

    def test_unknown_interface_rejected(self):
        interfaces, mapping = self._build()
        with pytest.raises(KeyError):
            mapping.expand_one_to_many([interfaces[1]])  # vacations missing


class TestGroupPartition:
    """Figure 3's C_groups / C_root / C_int example (Real Estate)."""

    def _figure3_tree(self) -> SchemaNode:
        state = SchemaNode(None, cluster="c_state", name="l1")
        city = SchemaNode(None, cluster="c_city", name="l2")
        zone = SchemaNode(None, [state, city], name="zone")
        minimum = SchemaNode(None, cluster="c_min", name="l3")
        maximum = SchemaNode(None, cluster="c_max", name="l4")
        price = SchemaNode(None, [minimum, maximum], name="price")
        garage = SchemaNode(None, cluster="c_garage", name="l5")
        beds = SchemaNode(None, [
            SchemaNode(None, cluster="c_bed", name="l6"),
            SchemaNode(None, cluster="c_bath", name="l7"),
        ], name="beds")
        characteristics = SchemaNode(None, [beds, garage], name="chars")
        ptype = SchemaNode(None, cluster="c_ptype", name="l8")
        return SchemaNode(None, [zone, price, characteristics, ptype], name="root")

    def test_partition(self):
        partition = partition_clusters(self._figure3_tree())
        assert [g.clusters for g in partition.regular] == [
            ("c_state", "c_city"), ("c_min", "c_max"), ("c_bed", "c_bath")
        ]
        assert partition.c_int() == ("c_garage",)
        assert partition.c_root() == ("c_ptype",)

    def test_group_kinds_and_lookup(self):
        partition = partition_clusters(self._figure3_tree())
        assert partition.group_of("c_garage").kind is GroupKind.ISOLATED
        assert partition.group_of("c_ptype").kind is GroupKind.ROOT
        assert partition.group_of("c_state").kind is GroupKind.REGULAR
        assert partition.group_of("c_missing") is None

    def test_all_groups_order(self):
        partition = partition_clusters(self._figure3_tree())
        kinds = [g.kind for g in partition.all_groups()]
        assert kinds == [
            GroupKind.REGULAR, GroupKind.REGULAR, GroupKind.REGULAR,
            GroupKind.ROOT, GroupKind.ISOLATED,
        ]

    def test_unclustered_leaf_rejected(self):
        tree = SchemaNode(None, [SchemaNode(None, name="leaf")], name="root")
        with pytest.raises(ValueError, match="no cluster"):
            partition_clusters(tree)


class TestSerialization:
    def _interface(self) -> QueryInterface:
        fields = [
            make_field(
                "Class",
                kind=FieldKind.SELECTION_LIST,
                instances=("First", "Economy"),
                cluster="c_class",
                name="f1",
            ),
            make_field("Airline", cluster="c_airline", name="f2"),
        ]
        group = make_group("Service", fields, name="g")
        return QueryInterface(
            "qi", SchemaNode(None, [group], name="r"), domain="airline",
            url="http://example.org", metadata={"k": "v"},
        )

    def test_interface_round_trip(self):
        original = self._interface()
        restored = interface_from_dict(interface_to_dict(original))
        assert restored.name == original.name
        assert restored.domain == "airline"
        assert restored.metadata == {"k": "v"}
        assert restored.root.find_by_name("f1").instances == ("First", "Economy")
        assert restored.root.find_by_name("f1").kind is FieldKind.SELECTION_LIST
        assert restored.leaf_count() == 2

    def test_mapping_round_trip(self):
        interface = self._interface()
        mapping = Mapping()
        mapping.assign("c_class", "qi", interface.field_by_name("f1"))
        data = mapping_to_dict(mapping)
        restored = mapping_from_dict(data, [interface])
        assert restored["c_class"].members["qi"].name == "f1"

    def test_mapping_with_unknown_node_rejected(self):
        interface = self._interface()
        with pytest.raises(KeyError):
            mapping_from_dict({"c_x": {"qi": "ghost"}}, [interface])

    def test_corpus_round_trip(self, tmp_path):
        interface = self._interface()
        mapping = Mapping()
        mapping.assign("c_class", "qi", interface.field_by_name("f1"))
        path = tmp_path / "corpus.json"
        save_corpus(path, [interface], mapping)
        interfaces, restored = load_corpus(path)
        assert interfaces[0].name == "qi"
        assert restored["c_class"].members["qi"].label == "Class"
