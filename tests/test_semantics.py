"""Definition 1 — label relations, using the paper's own examples."""

from __future__ import annotations

import pytest

from repro.core.semantics import LabelRelation


class TestStringEqual:
    def test_paper_example(self, comparator):
        assert comparator.string_equal("From", "From")

    def test_case_insensitive(self, comparator):
        assert comparator.string_equal("zip code", "Zip Code")

    def test_comment_stripped(self, comparator):
        assert comparator.string_equal("Adults (18-64)", "Adults")

    def test_different(self, comparator):
        assert not comparator.string_equal("From", "To")


class TestEqual:
    def test_paper_example(self, comparator):
        # "Type of Job equals Job Type"
        assert comparator.equal("Type of Job", "Job Type")

    def test_stemmed_equality(self, comparator):
        # Table 4: Preferred Airline ~ Airline Preference via Porter stems.
        assert comparator.equal("Preferred Airline", "Airline Preference")

    def test_from_not_equal_to(self, comparator):
        # Stop-word-only labels keep their tokens; From != To.
        assert not comparator.equal("From", "To")

    def test_not_equal_when_sets_differ(self, comparator):
        assert not comparator.equal("Job Type", "Job Category")


class TestSynonym:
    def test_paper_example(self, comparator):
        # "Area of Study synonym Field of Work"
        assert comparator.synonym("Area of Study", "Field of Work")

    def test_symmetric(self, comparator):
        assert comparator.synonym("Field of Work", "Area of Study")

    def test_needs_equal_cardinality(self, comparator):
        assert not comparator.synonym("Area of Study", "Work")

    def test_needs_at_least_one_synonymy(self, comparator):
        # Equal labels are not synonym-level (no WordNet synonymy involved).
        assert not comparator.synonym("Job Type", "Type of Job")

    def test_single_word(self, comparator):
        assert comparator.synonym("Brand", "Make")

    def test_conjunction_guard(self, comparator):
        assert not comparator.synonym("Make/Model", "Brand Model")
        assert not comparator.synonym("Beds and Baths", "Bedrooms Bathrooms")


class TestHypernym:
    def test_paper_example(self, comparator):
        # "Class hypernym Class of Tickets"
        assert comparator.hypernym("Class", "Class of Tickets")

    def test_wordnet_hypernymy(self, comparator):
        assert comparator.hypernym("Location", "City")

    def test_subset_with_synonym_tokens(self, comparator):
        assert comparator.hypernym("Car", "Auto Model")

    def test_strictness(self, comparator):
        # Equal content sets are not hypernym-related (n == m, no hypernymy).
        assert not comparator.hypernym("Job Type", "Type of Job")

    def test_not_hypernym_when_unrelated_token(self, comparator):
        assert not comparator.hypernym("Price", "Class of Tickets")

    def test_hyponym_is_inverse(self, comparator):
        assert comparator.hyponym("Class of Tickets", "Class")
        assert not comparator.hyponym("Class", "Class of Tickets")

    def test_question_label(self, comparator):
        # Section 5.1.2: "Do you have any preferences?" is a hypernym of
        # "Airline Preferences" ({prefer} vs {airline, prefer}).
        assert comparator.hypernym(
            "Do you have any preferences?", "Airline Preferences"
        )

    def test_conjunction_guard(self, comparator):
        assert not comparator.hypernym("Class", "Class and Fare")


class TestRelationBetween:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("From", "From", LabelRelation.STRING_EQUAL),
            ("Type of Job", "Job Type", LabelRelation.EQUAL),
            ("Area of Study", "Field of Work", LabelRelation.SYNONYM),
            ("Class", "Class of Tickets", LabelRelation.HYPERNYM),
            ("Class of Tickets", "Class", LabelRelation.HYPONYM),
            ("Price", "Airline", LabelRelation.NONE),
        ],
    )
    def test_strongest_relation(self, comparator, a, b, expected):
        assert comparator.relation_between(a, b) is expected

    def test_ordering_is_strength(self):
        assert (
            LabelRelation.STRING_EQUAL
            > LabelRelation.EQUAL
            > LabelRelation.SYNONYM
            > LabelRelation.HYPERNYM
            > LabelRelation.HYPONYM
            > LabelRelation.NONE
        )


class TestAggregates:
    def test_similar(self, comparator):
        assert comparator.similar("Job Type", "Type of Job")
        assert comparator.similar("Area of Study", "Field of Work")
        assert not comparator.similar("Class", "Class of Tickets")

    def test_at_least_as_general(self, comparator):
        assert comparator.at_least_as_general("Class", "Class of Tickets")
        assert comparator.at_least_as_general("Job Type", "Type of Job")
        assert not comparator.at_least_as_general("Class of Tickets", "Class")


class TestLabelObject:
    def test_analyzer_caches(self, analyzer):
        assert analyzer.label("Job Type") is analyzer.label("Job Type")

    def test_conjunction_detection(self, analyzer):
        assert analyzer.label("Make/Model").has_conjunction
        assert analyzer.label("Beds & Baths").has_conjunction
        assert analyzer.label("City and State").has_conjunction
        assert not analyzer.label("Standard Label").has_conjunction

    def test_content_word_count(self, analyzer):
        assert analyzer.label("Max. Number of Stops").content_word_count == 3
        assert analyzer.label("Class").content_word_count == 1

    def test_stems_frozen(self, analyzer):
        label = analyzer.label("Area of Study")
        assert label.stems == frozenset({"area", "studi"})
