"""The labeling service: cache, engine, batch isolation, HTTP round trips."""

from __future__ import annotations

import json
import time

import pytest

from repro.datasets.registry import load_domain
from repro.schema.serialize import corpus_to_dict
from repro.service.cache import LRUCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.engine import (
    LabelingEngine,
    LabelingRequest,
    RequestError,
    execute_batch,
)
from repro.service.server import LabelingServer, MetricsRegistry


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(capacity=2)
        assert cache.get("k") is None
        cache.put("k", 1)
        assert cache.get("k") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_eviction_is_lru(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh 'a'; 'b' is now coldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1
        assert len(cache) == 2

    def test_zero_capacity_disables_storage(self):
        cache = LRUCache(capacity=0)
        cache.put("k", 1)
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats.misses == 1 and stats.size == 0

    def test_clear_keeps_counters(self):
        cache = LRUCache(capacity=4)
        cache.put("k", 1)
        cache.get("k")
        cache.clear()
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats.hits == 1 and stats.size == 0


class TestExecuteBatch:
    def test_results_in_submission_order(self):
        outcomes = execute_batch([lambda i=i: i * i for i in range(6)], jobs=3)
        assert [o.value for o in outcomes] == [0, 1, 4, 9, 16, 25]
        assert all(o.ok for o in outcomes)

    def test_partial_failure_is_isolated(self):
        def boom():
            raise RuntimeError("poisoned corpus")

        outcomes = execute_batch([lambda: "ok", boom, lambda: "also ok"], jobs=2)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "poisoned corpus" in outcomes[1].error
        assert outcomes[1].error_type == "internal"

    def test_timeout_degrades_to_error(self):
        def slow():
            time.sleep(5)
            return "never"

        outcomes = execute_batch([slow, lambda: "fast"], jobs=2, timeout=0.2)
        assert not outcomes[0].ok
        assert outcomes[0].error_type == "timeout"
        assert outcomes[1].ok and outcomes[1].value == "fast"

    def test_sequential_path_matches_parallel(self):
        tasks = [lambda i=i: i + 1 for i in range(5)]
        sequential = [o.value for o in execute_batch(tasks, jobs=1)]
        parallel = [o.value for o in execute_batch(tasks, jobs=4)]
        assert sequential == parallel


class TestEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        return LabelingEngine(cache_size=8)

    def test_domain_request(self, engine):
        response = engine.label({"domain": "job", "seed": 0})
        assert response["ok"] and response["cached"] is False
        assert response["classification"] in (
            "consistent", "weakly_consistent", "inconsistent"
        )
        assert response["stats"]["leaves"] > 0
        assert response["tree"]["children"]

    def test_repeat_request_hits_cache(self, engine):
        cold = engine.label({"domain": "auto", "seed": 0})
        warm = engine.label({"domain": "auto", "seed": 0})
        assert cold["cached"] is False and warm["cached"] is True
        assert warm["fingerprint"] == cold["fingerprint"]
        assert warm["field_labels"] == cold["field_labels"]
        assert engine.stats()["cache"]["hits"] >= 1

    def test_corpus_and_domain_requests_share_cache_key(self, engine):
        dataset = load_domain("hotels", seed=0)
        document = corpus_to_dict(dataset.interfaces, dataset.mapping)
        engine.label({"domain": "hotels", "seed": 0})
        via_corpus = engine.label({"corpus": document})
        assert via_corpus["cached"] is True

    def test_cached_response_is_isolated_copy(self, engine):
        first = engine.label({"domain": "job", "seed": 3})
        first["field_labels"].clear()
        first["tree"]["children"] = []
        second = engine.label({"domain": "job", "seed": 3})
        assert second["field_labels"] and second["tree"]["children"]

    def test_lint_flag_adds_findings(self, engine):
        response = engine.label({"domain": "airline", "seed": 0, "lint": True})
        assert isinstance(response["lint"], list)
        for finding in response["lint"]:
            assert {"check", "severity", "nodes", "message"} <= set(finding)

    def test_lint_flag_respected_across_cache_hits(self):
        engine = LabelingEngine(cache_size=8)
        plain = engine.label({"domain": "realestate", "seed": 0})
        assert "lint" not in plain
        linted = engine.label({"domain": "realestate", "seed": 0, "lint": True})
        assert linted["cached"] is True
        assert isinstance(linted["lint"], list)
        plain_again = engine.label({"domain": "realestate", "seed": 0})
        assert plain_again["cached"] is True
        assert "lint" not in plain_again

    def test_options_are_honored_and_keyed(self, engine):
        base = engine.label({"domain": "realestate", "seed": 0})
        ablated = engine.label(
            {"domain": "realestate", "seed": 0, "options": {"use_instances": False}}
        )
        assert ablated["fingerprint"] != base["fingerprint"]
        assert ablated["cached"] is False

    def test_batch_partial_failure(self, engine):
        responses = engine.label_batch(
            [
                {"domain": "job", "seed": 0},
                {"domain": "atlantis"},
                "not even an object",
                {"domain": "auto", "seed": 0},
            ],
            jobs=2,
        )
        assert [r.get("ok") for r in responses] == [True, False, False, True]
        assert responses[1]["error_type"] == "invalid_request"
        assert "atlantis" in responses[1]["error"]
        assert responses[2]["error_type"] == "invalid_request"


class TestRequestValidation:
    def test_needs_corpus_or_domain(self):
        with pytest.raises(RequestError, match="exactly one"):
            LabelingRequest.from_payload({})
        with pytest.raises(RequestError, match="exactly one"):
            LabelingRequest.from_payload({"domain": "job", "corpus": {}})

    def test_unknown_domain(self):
        with pytest.raises(RequestError, match="unknown domain"):
            LabelingRequest.from_payload({"domain": "warehouse"})

    def test_bad_seed(self):
        with pytest.raises(RequestError, match="seed"):
            LabelingRequest.from_payload({"domain": "job", "seed": "zero"})

    def test_malformed_corpus(self):
        with pytest.raises(RequestError, match="malformed corpus"):
            LabelingRequest.from_payload(
                {"corpus": {"interfaces": [{"oops": True}], "mapping": {}}}
            )

    def test_empty_interfaces(self):
        with pytest.raises(RequestError, match="non-empty"):
            LabelingRequest.from_payload(
                {"corpus": {"interfaces": [], "mapping": {}}}
            )

    def test_bad_options(self):
        with pytest.raises(RequestError, match="max_level"):
            LabelingRequest.from_payload(
                {"domain": "job", "options": {"max_level": "psychic"}}
            )

    def test_bad_timeout(self):
        with pytest.raises(RequestError, match="timeout"):
            LabelingRequest.from_payload({"domain": "job", "timeout": -1})

    def test_bad_lexicon(self):
        with pytest.raises(RequestError, match="lexicon"):
            LabelingRequest.from_payload(
                {"domain": "job", "lexicon": {"hypernyms": [["only-one"]]}}
            )


class TestMetricsRegistry:
    def test_percentiles_from_ring_buffer(self):
        registry = MetricsRegistry(window=100)
        for ms in range(1, 101):
            registry.record("/label", 200, float(ms))
        snap = registry.snapshot()
        assert snap["requests_total"] == 100
        assert snap["latency"]["p50_ms"] == 50.0
        assert snap["latency"]["p99_ms"] == 99.0
        assert snap["latency"]["max_ms"] == 100.0

    def test_window_bounds_memory(self):
        registry = MetricsRegistry(window=10)
        for ms in range(1000):
            registry.record("/label", 200, float(ms))
        assert registry.snapshot()["latency"]["window"] == 10

    def test_nearest_rank_semantics(self):
        # Nearest-rank: rank = ceil(n * pct / 100), 1-indexed.
        ordered = [10.0, 20.0, 30.0, 40.0]
        assert MetricsRegistry._percentile(ordered, 50) == 20.0
        assert MetricsRegistry._percentile(ordered, 90) == 40.0
        assert MetricsRegistry._percentile(ordered, 99) == 40.0
        assert MetricsRegistry._percentile([7.5], 99) == 7.5
        assert MetricsRegistry._percentile([], 50) == 0.0
        # p99 only separates from max once the window exceeds 100 samples.
        big = [float(ms) for ms in range(1, 201)]
        assert MetricsRegistry._percentile(big, 99) == 198.0
        assert MetricsRegistry._percentile(big, 100) == 200.0

    def test_snapshot_reports_p50_p90_p99(self):
        registry = MetricsRegistry(window=200)
        for ms in range(1, 201):
            registry.record("/label", 200, float(ms))
        latency = registry.snapshot()["latency"]
        assert latency["p50_ms"] == 100.0
        assert latency["p90_ms"] == 180.0
        assert latency["p99_ms"] == 198.0
        assert latency["max_ms"] == 200.0

    def test_sorted_sample_cached_between_snapshots(self):
        registry = MetricsRegistry(window=100)
        for ms in (3.0, 1.0, 2.0):
            registry.record("/label", 200, ms)
        first = registry.snapshot()
        cached = registry._sorted
        assert cached == [1.0, 2.0, 3.0]
        # An idle re-poll reuses the sorted sample (same object)...
        assert registry.snapshot()["latency"] == first["latency"]
        assert registry._sorted is cached
        # ...and the next record invalidates it.
        registry.record("/label", 200, 0.5)
        assert registry._sorted is None
        assert registry.snapshot()["latency"]["p50_ms"] == 1.0


class TestHTTPService:
    @pytest.fixture(scope="class")
    def server(self):
        with LabelingServer(port=0, cache_size=16) as running:
            yield running

    @pytest.fixture(scope="class")
    def client(self, server):
        return ServiceClient(server.url, timeout=60)

    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0

    def test_label_round_trip_and_cache_metrics(self, client):
        cold = client.label(domain="job", seed=0)
        assert cold["ok"] and cold["cached"] is False
        assert cold["tree"]["children"]

        hits_before = client.metrics()["engine"]["cache"]["hits"]
        warm = client.label(domain="job", seed=0)
        assert warm["cached"] is True
        assert warm["classification"] == cold["classification"]
        hits_after = client.metrics()["engine"]["cache"]["hits"]
        assert hits_after == hits_before + 1

    def test_label_raw_corpus_payload(self, client):
        dataset = load_domain("auto", seed=1)
        response = client.label_corpus(dataset.interfaces, dataset.mapping)
        assert response["ok"]
        assert response["stats"]["interfaces"] == len(dataset.interfaces)

    def test_invalid_request_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.label(domain="warehouse")
        assert excinfo.value.status == 400
        assert excinfo.value.payload["error_type"] == "invalid_request"

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_batch_isolates_bad_item(self, client):
        payload = client.batch(
            [{"domain": "job", "seed": 0}, {"domain": "atlantis"}], jobs=2
        )
        assert payload["count"] == 2
        assert payload["ok"] is False
        oks = [r.get("ok") for r in payload["results"]]
        assert oks == [True, False]

    def test_metrics_shape(self, client):
        client.healthz()
        metrics = client.metrics()
        assert metrics["http"]["requests_total"] >= 1
        assert "/healthz" in metrics["http"]["by_endpoint"]
        latency = metrics["http"]["latency"]
        assert {"p50_ms", "p90_ms", "p99_ms", "max_ms", "window"} <= set(latency)
        assert metrics["engine"]["cache"]["capacity"] == 16


class TestRunAllDomainsJobs:
    def test_parallel_matches_sequential(self):
        from repro.experiment import run_all_domains

        sequential = run_all_domains(seed=0, respondent_count=1, jobs=1)
        parallel = run_all_domains(seed=0, respondent_count=1, jobs=4)
        assert list(sequential) == list(parallel)
        for name in sequential:
            a, b = sequential[name], parallel[name]
            assert a.classification == b.classification
            assert a.fld_acc == b.fld_acc
            assert a.int_acc == b.int_acc
            assert a.ha == b.ha
            assert a.labeling.field_labels == b.labeling.field_labels


class TestLintNodeDict:
    def test_lints_service_tree_payload(self, comparator):
        engine = LabelingEngine(cache_size=0)
        response = engine.label({"domain": "airline", "seed": 0, "lint": True})
        from repro.lint import lint_node_dict

        findings = lint_node_dict(response["tree"], comparator)
        assert len(findings) == len(response["lint"])

    def test_rejects_non_tree(self):
        from repro.lint import lint_node_dict

        with pytest.raises(ValueError, match="serialized schema node"):
            lint_node_dict({"not": "a tree"})


class TestClientErrorPaths:
    def test_connection_refused_raises_status_zero(self):
        # Bind-then-close gives a port nothing is listening on.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=2, retries=0)
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 0
        assert excinfo.value.payload == {}
        assert "failed" in str(excinfo.value)

    def test_connection_failures_are_retried(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(
            f"http://127.0.0.1:{port}", timeout=2, retries=2, backoff_s=0.01
        )
        with pytest.raises(ServiceError):
            client.healthz()
        assert client.last_attempts == 3  # the initial try + both retries

    def test_malformed_json_body_raises_status_zero(self):
        # A tiny HTTP server that answers 200 with a non-JSON body: the
        # client must surface an unparseable success as a ServiceError
        # rather than returning garbage.
        import threading
        from http.server import BaseHTTPRequestHandler, HTTPServer

        class GarbageHandler(BaseHTTPRequestHandler):
            def do_GET(self):
                body = b"<html>definitely not json</html>"
                self.send_response(200)
                self.send_header("Content-Type", "text/html")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):  # noqa: A002
                pass

        httpd = HTTPServer(("127.0.0.1", 0), GarbageHandler)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{httpd.server_address[1]}"
            client = ServiceClient(url, timeout=5, retries=0)
            with pytest.raises(ServiceError) as excinfo:
                client.healthz()
            assert excinfo.value.status == 0
            assert "not valid JSON" in str(excinfo.value)
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_429_is_retried_honoring_retry_after(self):
        # A server that sheds the first two attempts with 429 + Retry-After
        # and then succeeds; the client must sleep what the server said
        # and deliver the eventual success.
        import json as json_module
        import threading
        from http.server import BaseHTTPRequestHandler, HTTPServer

        hits = []

        class SheddingHandler(BaseHTTPRequestHandler):
            def do_GET(self):
                hits.append(time.monotonic())
                if len(hits) <= 2:
                    payload = {
                        "ok": False,
                        "error_type": "overloaded",
                        "retry_after": 0.08,
                    }
                    body = json_module.dumps(payload).encode()
                    self.send_response(429)
                    self.send_header("Retry-After", "0.080")
                else:
                    body = json_module.dumps({"status": "ok"}).encode()
                    self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):  # noqa: A002
                pass

        httpd = HTTPServer(("127.0.0.1", 0), SheddingHandler)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{httpd.server_address[1]}"
            client = ServiceClient(url, timeout=5, retries=3, backoff_s=0.5)
            response = client.healthz()
            assert response == {"status": "ok"}
            assert client.last_attempts == 3
            # Both gaps honored the server's 0.08s Retry-After, not the
            # client's 0.5s default backoff.
            gaps = [b - a for a, b in zip(hits, hits[1:])]
            assert all(0.07 <= gap < 0.4 for gap in gaps), gaps
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_retry_after_capped_by_max_backoff(self):
        error = ServiceError(429, {"retry_after": 30.0}, "overloaded")
        client = ServiceClient("http://127.0.0.1:1", max_backoff_s=0.25)
        assert client._delay_for(error) == 0.25

    def test_non_retryable_status_is_not_retried(self):
        with LabelingServer(port=0) as server:
            client = ServiceClient(server.url, retries=3)
            with pytest.raises(ServiceError) as excinfo:
                client.label(domain="no-such-domain")
            assert excinfo.value.status == 400
            assert client.last_attempts == 1


class TestContentLengthHandling:
    """POST body framing: the server must never 500 (or hang) on a bad
    Content-Length — missing, zero, garbage, or absurdly large."""

    @pytest.fixture(scope="class")
    def server(self):
        with LabelingServer(port=0, cache_size=4) as running:
            yield running

    @staticmethod
    def _raw_post(server, headers: dict, body: bytes = b""):
        """POST with full control over the headers urllib would normalize."""
        import http.client
        from urllib.parse import urlsplit

        parts = urlsplit(server.url)
        conn = http.client.HTTPConnection(parts.hostname, parts.port, timeout=10)
        try:
            conn.putrequest("POST", "/label", skip_accept_encoding=True)
            for name, value in headers.items():
                conn.putheader(name, value)
            conn.endheaders()
            if body:
                conn.send(body)
            response = conn.getresponse()
            payload = json.loads(response.read())
            return response.status, payload
        finally:
            conn.close()

    def test_missing_content_length_is_400(self, server):
        status, payload = self._raw_post(
            server, {"Content-Type": "application/json"}
        )
        assert status == 400
        assert payload["error_type"] == "invalid_request"
        assert "body required" in payload["error"]
        assert payload["request_id"]

    def test_zero_content_length_is_400(self, server):
        status, payload = self._raw_post(
            server,
            {"Content-Type": "application/json", "Content-Length": "0"},
        )
        assert status == 400
        assert "body required" in payload["error"]

    def test_garbage_content_length_is_400_not_500(self, server):
        status, payload = self._raw_post(
            server,
            {"Content-Type": "application/json", "Content-Length": "banana"},
        )
        assert status == 400
        assert payload["error_type"] == "invalid_request"
        assert "invalid Content-Length" in payload["error"]
        assert "'banana'" in payload["error"]

    def test_oversized_declared_length_is_413_without_reading(self, server):
        # Declare far more than MAX_BODY_BYTES but send nothing: the
        # server must answer 413 immediately instead of blocking on a
        # body that never arrives.
        declared = 64 * 1024 * 1024
        status, payload = self._raw_post(
            server,
            {
                "Content-Type": "application/json",
                "Content-Length": str(declared),
            },
        )
        assert status == 413
        assert payload["error_type"] == "payload_too_large"
        assert str(declared) in payload["error"]
        # The connection misbehavior did not wedge the server.
        assert ServiceClient(server.url, timeout=10).healthz()["status"] == "ok"


class TestClientErrorBodyShapes:
    """The retry loop must survive whatever JSON shape an error body has."""

    @staticmethod
    def _serve_one(status: int, body: bytes, headers: dict | None = None):
        import threading
        from http.server import BaseHTTPRequestHandler, HTTPServer

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                self.send_response(status)
                for name, value in (headers or {}).items():
                    self.send_header(name, value)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):  # noqa: A002
                pass

        httpd = HTTPServer(("127.0.0.1", 0), Handler)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        return httpd

    def test_json_array_error_body_does_not_crash_client(self):
        # A non-repro upstream may answer an error with a JSON array;
        # the client used to call .get on it and die with AttributeError.
        httpd = self._serve_one(500, b'["oops", "broken"]')
        try:
            url = f"http://127.0.0.1:{httpd.server_address[1]}"
            client = ServiceClient(url, timeout=5, retries=0)
            with pytest.raises(ServiceError) as excinfo:
                client.healthz()
            assert excinfo.value.status == 500
            assert excinfo.value.payload == {}
            assert "oops" in str(excinfo.value)
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_http_date_retry_after_falls_back_to_backoff(self):
        # RFC 7231 allows Retry-After as an HTTP-date; float() on it used
        # to raise ValueError straight out of the retry loop.
        error = ServiceError(429, {}, "overloaded")
        error.retry_after_header = "Wed, 21 Oct 2026 07:28:00 GMT"
        client = ServiceClient("http://127.0.0.1:1", backoff_s=0.07)
        assert client._delay_for(error) == pytest.approx(0.07)

    def test_garbage_retry_after_payload_falls_back(self):
        error = ServiceError(429, {"retry_after": "soon-ish"}, "overloaded")
        client = ServiceClient("http://127.0.0.1:1", backoff_s=0.03)
        assert client._delay_for(error) == pytest.approx(0.03)

    def test_http_date_retry_after_is_retried_end_to_end(self):
        # 429 with only an HTTP-date Retry-After header must still be
        # retried (on the client's own backoff), not explode.
        import threading
        from http.server import BaseHTTPRequestHandler, HTTPServer

        hits = []

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                hits.append(1)
                if len(hits) == 1:
                    body = b'{"ok": false, "error_type": "overloaded"}'
                    self.send_response(429)
                    self.send_header(
                        "Retry-After", "Wed, 21 Oct 2026 07:28:00 GMT"
                    )
                else:
                    body = b'{"status": "ok"}'
                    self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):  # noqa: A002
                pass

        httpd = HTTPServer(("127.0.0.1", 0), Handler)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        try:
            url = f"http://127.0.0.1:{httpd.server_address[1]}"
            client = ServiceClient(url, timeout=5, retries=2, backoff_s=0.01)
            assert client.healthz() == {"status": "ok"}
            assert client.last_attempts == 2
        finally:
            httpd.shutdown()
            httpd.server_close()
