"""Group naming: consistent, ranked, and partially consistent solutions."""

from __future__ import annotations

import pytest

from repro.core.consistency import ConsistencyLevel
from repro.core.group_relation import GroupRelation, GroupTuple
from repro.core.solutions import name_group, rank_tuple_solutions

from .conftest import build_group_corpus, regular_group


class TestTable2:
    """String-level solution for the passenger group."""

    def test_solution(self, comparator, table2_corpus):
        __, mapping, group = table2_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        result = name_group(relation, comparator)
        assert result.consistent
        assert result.level is ConsistencyLevel.STRING
        assert result.best.labels == {
            "c_senior": "Seniors",
            "c_adult": "Adults",
            "c_child": "Children",
            "c_infant": "Infants",
        }

    def test_solution_partition_records_interfaces(self, comparator, table2_corpus):
        __, mapping, group = table2_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        result = name_group(relation, comparator)
        assert result.best.supplying_interfaces() == {
            "aa", "british", "economytravel", "vacations"
        }


class TestTable4:
    """Equality-level solution with the expressiveness criterion."""

    def test_resolves_above_string_level(self, comparator, table4_corpus):
        __, mapping, group = table4_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        result = name_group(relation, comparator)
        assert result.consistent
        assert result.level is not None and result.level > ConsistencyLevel.STRING

    def test_expressiveness_prefers_descriptive(self, comparator, table4_corpus):
        """Paper: (Max. Number of Stops, Class of Ticket, Preferred Airline)
        beats (Number of Connections, Class of Ticket, Airline Preference) —
        7 distinct content words versus 6."""
        __, mapping, group = table4_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        candidates = [
            GroupTuple(
                "x",
                ("Max. Number of Stops", "Class of Ticket", "Preferred Airline"),
                group.clusters,
            ),
            GroupTuple(
                "y",
                ("Number of Connections", "Class of Ticket", "Airline Preference"),
                group.clusters,
            ),
        ]
        ranked = rank_tuple_solutions(candidates, relation, comparator.analyzer)
        assert ranked[0][0].labels[0] == "Max. Number of Stops"
        assert ranked[0][1] == 7 and ranked[1][1] == 6

    def test_frequency_breaks_expressiveness_ties(self, comparator):
        rows = {
            "a": {"c1": "Min Price", "c2": "Max Price"},
            "b": {"c1": "Min Price", "c2": "Max Price"},
            "c": {"c1": "Low Price", "c2": "Top Price"},
        }
        __, mapping = build_group_corpus(rows, ["c1", "c2"])
        group = regular_group(["c1", "c2"])
        relation = GroupRelation.from_mapping(group, mapping)
        result = name_group(relation, comparator)
        # Both candidate rows have 3 distinct content words; the one two
        # interfaces supply wins.
        assert result.best.labels == {"c1": "Min Price", "c2": "Max Price"}
        assert result.best.frequency == 2


class TestTable3:
    """Partially consistent solution when no partition covers the group."""

    def test_partial_solution(self, comparator, table3_corpus):
        __, mapping, group = table3_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        result = name_group(relation, comparator)
        assert not result.consistent
        assert len(result.solutions) == 1
        solution = result.solutions[0]
        assert solution.partition is None
        assert solution.labels == {
            "c_state": "State",
            "c_city": "City",
            "c_zip": "Zip Code",
            "c_distance": "Distance",
        }

    def test_partial_prefers_larger_fragments(self, comparator):
        rows = {
            "a": {"c1": "Alpha", "c2": "Beta", "c3": "Gamma"},
            "b": {"c4": "Delta"},
        }
        __, mapping = build_group_corpus(rows, ["c1", "c2", "c3", "c4"])
        group = regular_group(["c1", "c2", "c3", "c4"])
        relation = GroupRelation.from_mapping(group, mapping)
        result = name_group(relation, comparator)
        assert not result.consistent
        assert result.solutions[0].labels == {
            "c1": "Alpha", "c2": "Beta", "c3": "Gamma", "c4": "Delta"
        }


class TestEdgeCases:
    def test_empty_relation(self, comparator):
        group = regular_group(["c1", "c2"])
        relation = GroupRelation(group, [])
        result = name_group(relation, comparator)
        assert not result.consistent
        assert result.best.labels == {"c1": None, "c2": None}

    def test_unlabelable_cluster_stays_null(self, comparator):
        """The Real-Estate Lease-Rate case: one cluster labeled nowhere."""
        rows = {
            "a": {"c_to": "To"},
            "b": {"c_to": "To"},
        }
        __, mapping = build_group_corpus(rows, ["c_from", "c_to"])
        # Register the never-labeled field so the cluster exists.
        from repro.schema.interface import make_field

        mapping.assign("c_from", "a", make_field(None, name="a:cf"))
        group = regular_group(["c_from", "c_to"])
        relation = GroupRelation.from_mapping(group, mapping)
        result = name_group(relation, comparator)
        assert result.consistent  # consistent over the labelable clusters
        assert result.best.labels == {"c_from": None, "c_to": "To"}

    def test_max_level_truncation(self, comparator):
        """The ablation knob: stopping at STRING forces partial solutions."""
        rows = {
            "a": {"c1": "Preferred Airline", "c2": "Class"},
            "b": {"c1": "Airline Preference", "c3": "Stops"},
        }
        __, mapping = build_group_corpus(rows, ["c1", "c2", "c3"])
        group = regular_group(["c1", "c2", "c3"])
        relation = GroupRelation.from_mapping(group, mapping)
        truncated = name_group(
            relation, comparator, max_level=ConsistencyLevel.STRING
        )
        assert not truncated.consistent
        full = name_group(relation, comparator)
        assert full.consistent
        assert full.level is ConsistencyLevel.EQUALITY

    def test_relation_table_rendering(self, comparator, table2_corpus):
        __, mapping, group = table2_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        table = relation.as_table()
        assert "c_senior" in table and "british" in table and "Seniors" in table

    def test_frequency_of(self, comparator, table2_corpus):
        __, mapping, group = table2_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        assert relation.frequency_of((None, "Adults", "Children", None)) == 1
        assert relation.frequency_of(("Seniors", "Adults", "Children", None)) == 2

    def test_tuple_of(self, comparator, table2_corpus):
        __, mapping, group = table2_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        assert relation.tuple_of("british").label_for("c_senior") == "Seniors"
        assert relation.tuple_of("ghost") is None


class TestGroupNamingResultApi:
    def test_solution_for_partition(self, comparator, table2_corpus):
        __, mapping, group = table2_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        result = name_group(relation, comparator)
        found = result.solution_for_partition(frozenset({"british"}))
        assert found is not None
        assert "british" in found.supplying_interfaces()
        assert result.solution_for_partition(frozenset({"ghost"})) is None

    def test_partial_solution_supports_nobody(self, comparator, table3_corpus):
        __, mapping, group = table3_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        result = name_group(relation, comparator)
        solution = result.solutions[0]
        assert solution.supplying_interfaces() == frozenset()
        assert not solution.is_consistent
        assert result.solution_for_partition(frozenset({"100auto"})) is None

    def test_label_for_accessor(self, comparator, table2_corpus):
        __, mapping, group = table2_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        best = name_group(relation, comparator).best
        assert best.label_for("c_adult") == "Adults"
        assert best.label_for("c_missing") is None
