"""Human-acceptance simulation: respondents, HA/HA*, attribution."""

from __future__ import annotations

import pytest

from repro.core.pipeline import label_integrated_interface
from repro.schema.clusters import Mapping
from repro.schema.interface import QueryInterface, make_field, make_group
from repro.schema.tree import SchemaNode
from repro.survey.respondent import Respondent
from repro.survey.study import run_study


def _labeled_result(comparator, with_jargon=False):
    """A tiny integrated interface, optionally with a frequency-1 jargon
    field (the Wyndham pattern)."""
    interfaces = []
    mapping = Mapping()

    def add(name, fields):
        nodes = []
        for cluster, label in fields:
            node = make_field(label, cluster=cluster, name=f"{name}:{cluster}")
            nodes.append(node)
            mapping.assign(cluster, name, node)
        group = make_group("Guests", nodes, name=f"{name}:g")
        interfaces.append(
            QueryInterface(name, SchemaNode(None, [group], name=f"{name}:r"))
        )

    add("s1", [("c_adult", "Adults"), ("c_child", "Children")])
    add("s2", [("c_adult", "Adults"), ("c_child", "Children")])
    if with_jargon:
        add("s3", [("c_adult", "Adults"), ("c_wyndham", "Wyndham ByRequest No")])

    clusters = ["c_adult", "c_child"] + (["c_wyndham"] if with_jargon else [])
    leaves = [SchemaNode(None, cluster=c, name=f"leaf:{c}") for c in clusters]
    root = SchemaNode(None, [SchemaNode(None, leaves, name="g")], name="r")
    result = label_integrated_interface(root, interfaces, mapping, comparator)
    return result, mapping


class TestRespondent:
    def test_clean_interface_not_flagged(self, comparator):
        result, mapping = _labeled_result(comparator)
        respondent = Respondent(seed=0, attentiveness=1.0)
        assert respondent.review(result, mapping, comparator) == []

    def test_jargon_field_flagged_and_inherited(self, comparator):
        result, mapping = _labeled_result(comparator, with_jargon=True)
        # seed=1 draws 0.134 first, below the 0.75 flag probability.
        respondent = Respondent(seed=1, attentiveness=1.0)
        difficulties = respondent.review(result, mapping, comparator)
        flagged = {d.cluster: d for d in difficulties}
        assert "c_wyndham" in flagged
        assert flagged["c_wyndham"].cause == "too_specific"
        assert flagged["c_wyndham"].inherited_from_source

    def test_deterministic_per_seed(self, comparator):
        result, mapping = _labeled_result(comparator, with_jargon=True)
        a = Respondent(seed=5).review(result, mapping, comparator)
        b = Respondent(seed=5).review(result, mapping, comparator)
        assert a == b

    def test_attentiveness_zero_never_flags(self, comparator):
        result, mapping = _labeled_result(comparator, with_jargon=True)
        respondent = Respondent(seed=0, attentiveness=0.0)
        assert respondent.review(result, mapping, comparator) == []


class TestStudy:
    def test_clean_interface_perfect_scores(self, comparator):
        result, mapping = _labeled_result(comparator)
        study = run_study(result, mapping, comparator, respondent_count=11)
        assert study.ha == 1.0 and study.ha_star == 1.0
        assert study.respondent_count == 11
        assert study.field_count == 2

    def test_ha_star_at_least_ha(self, comparator):
        result, mapping = _labeled_result(comparator, with_jargon=True)
        study = run_study(result, mapping, comparator, respondent_count=11)
        assert study.ha_star >= study.ha
        assert study.ha < 1.0  # the jargon field costs something

    def test_inherited_difficulty_fully_discounted(self, comparator):
        """The jargon field is source-inherited, so HA* climbs back to 1."""
        result, mapping = _labeled_result(comparator, with_jargon=True)
        study = run_study(result, mapping, comparator, respondent_count=11)
        assert study.ha_star == 1.0

    def test_flag_counts(self, comparator):
        result, mapping = _labeled_result(comparator, with_jargon=True)
        study = run_study(result, mapping, comparator, respondent_count=11)
        assert study.flagged_clusters() == ["c_wyndham"]

    def test_empty_interface(self, comparator):
        root = SchemaNode(None, name="r")
        from repro.core.result import LabelingResult
        from repro.schema.groups import GroupPartition

        result = LabelingResult(
            root=root, partition=GroupPartition([], None, [])
        )
        study = run_study(result, Mapping(), comparator)
        assert study.ha == 1.0 and study.field_count == 0

    def test_study_deterministic(self, comparator):
        result, mapping = _labeled_result(comparator, with_jargon=True)
        a = run_study(result, mapping, comparator, seed=2)
        b = run_study(result, mapping, comparator, seed=2)
        assert a.ha == b.ha and a.ha_star == b.ha_star


class TestRespondentProperties:
    def test_attentiveness_monotone_on_average(self, comparator):
        """More attentive respondents flag at least as much, on average."""
        result, mapping = _labeled_result(comparator, with_jargon=True)
        lows, highs = 0, 0
        for seed in range(40):
            lows += len(
                Respondent(seed, attentiveness=0.2).review(
                    result, mapping, comparator
                )
            )
            highs += len(
                Respondent(seed, attentiveness=1.0).review(
                    result, mapping, comparator
                )
            )
        assert highs >= lows

    def test_default_attentiveness_in_range(self):
        for seed in range(25):
            respondent = Respondent(seed)
            assert 0.7 <= respondent.attentiveness <= 1.0

    def test_flags_subset_of_objective_problems(self, comparator):
        result, mapping = _labeled_result(comparator, with_jargon=True)
        respondent = Respondent(seed=3, attentiveness=1.0)
        problems = {
            cluster
            for cluster, __ in respondent._objective_problems(
                result, mapping, comparator
            )
        }
        flagged = {
            d.cluster for d in respondent.review(result, mapping, comparator)
        }
        assert flagged <= problems


class TestStudyProperties:
    def test_more_respondents_tightens_ha(self, comparator):
        """HA with many respondents sits between the single-respondent
        extremes (it is an average)."""
        result, mapping = _labeled_result(comparator, with_jargon=True)
        singles = [
            run_study(result, mapping, comparator, respondent_count=1, seed=s).ha
            for s in range(8)
        ]
        big = run_study(result, mapping, comparator, respondent_count=25).ha
        assert min(singles) <= big <= max(singles) or big == pytest.approx(
            sum(singles) / len(singles), abs=0.2
        )

    def test_ha_bounds(self, comparator):
        result, mapping = _labeled_result(comparator, with_jargon=True)
        study = run_study(result, mapping, comparator)
        assert 0.0 <= study.ha <= study.ha_star <= 1.0
