"""The taxonomy corpus generator and its evaluation harness."""

from __future__ import annotations

import pytest

from repro.datasets.taxonomies import (
    ELECTRONICS,
    IntegrationScore,
    evaluate_integration,
    generate_taxonomies,
)
from repro.extensions import integrate_hierarchies


class TestGenerateTaxonomies:
    def test_counts_and_ground_truth_agree(self):
        hierarchies, ground_truth = generate_taxonomies(6, seed=1)
        assert 1 <= len(hierarchies) <= 6
        stores = {h.name for h in hierarchies}
        for per_store in ground_truth.values():
            assert set(per_store) <= stores

    def test_labels_come_from_variant_pools(self):
        __, ground_truth = generate_taxonomies(8, seed=2)
        pools = {
            concept_key: set(variants_)
            for __, concepts in ELECTRONICS.categories.values()
            for concept_key, variants_ in concepts.items()
        }
        for concept_key, per_store in ground_truth.items():
            for label in per_store.values():
                assert label in pools[concept_key], (concept_key, label)

    def test_deterministic(self):
        a, gta = generate_taxonomies(5, seed=3)
        b, gtb = generate_taxonomies(5, seed=3)
        assert gta == gtb
        assert [h.name for h in a] == [h.name for h in b]

    def test_every_hierarchy_fully_labeled(self):
        hierarchies, __ = generate_taxonomies(6, seed=4)
        for hierarchy in hierarchies:
            hierarchy.validate_labels()

    def test_spec_concept_keys(self):
        keys = ELECTRONICS.concept_keys()
        assert "laptops" in keys and len(keys) == len(set(keys))


class TestEvaluateIntegration:
    @pytest.fixture(scope="class")
    def scored(self):
        hierarchies, ground_truth = generate_taxonomies(8, seed=0)
        integrated = integrate_hierarchies(hierarchies)
        return evaluate_integration(integrated, ground_truth), integrated

    def test_score_ranges(self, scored):
        score, __ = scored
        assert 0.0 <= score.precision <= 1.0
        assert 0.0 <= score.recall <= 1.0
        assert 0.0 <= score.category_accuracy <= 1.0
        assert 0.0 <= score.f1 <= 1.0

    def test_f1_is_harmonic_mean(self, scored):
        score, __ = scored
        if score.precision + score.recall:
            expected = (
                2 * score.precision * score.recall
                / (score.precision + score.recall)
            )
            assert score.f1 == pytest.approx(expected)

    def test_f1_zero_when_both_zero(self):
        score = IntegrationScore(
            precision=0.0, recall=0.0, category_accuracy=1.0,
            concept_count=0, category_count=0,
        )
        assert score.f1 == 0.0

    def test_reasonable_quality(self, scored):
        score, __ = scored
        assert score.precision >= 0.85
        assert score.recall >= 0.75


class TestBookstoreSpec:
    """The second master taxonomy — including its known hard case."""

    def test_generates_and_integrates(self):
        from repro.datasets.taxonomies import BOOKSTORE

        hierarchies, ground_truth = generate_taxonomies(
            8, seed=0, spec=BOOKSTORE
        )
        integrated = integrate_hierarchies(hierarchies)
        score = evaluate_integration(integrated, ground_truth, spec=BOOKSTORE)
        assert score.precision >= 0.85
        assert score.recall >= 0.8

    def test_science_fiction_conflation_is_the_known_failure(self):
        """A purely lexical matcher conflates 'Science' (nonfiction) with
        'Science Fiction' (fiction) — a hypernym relation that is a FALSE
        correspondence here.  The conflation drags category accuracy down;
        this is the instance-free matching limitation the paper's cited
        matchers address with richer evidence ([10, 23, 24])."""
        from repro.core.semantics import SemanticComparator

        comparator = SemanticComparator()
        # The misleading lexical fact the matcher acts on:
        assert comparator.hypernym("Science", "Science Fiction")
        from repro.datasets.taxonomies import BOOKSTORE

        hierarchies, ground_truth = generate_taxonomies(
            8, seed=0, spec=BOOKSTORE
        )
        integrated = integrate_hierarchies(hierarchies)
        merged_cluster = next(
            (
                c for c in integrated.mapping.clusters
                if {"scifi", "science"} <= {
                    node.name.split(":")[-1] for node in c.members.values()
                }
            ),
            None,
        )
        score = evaluate_integration(integrated, ground_truth, spec=BOOKSTORE)
        if merged_cluster is not None:
            assert score.category_accuracy < 1.0
