"""Schema trees: structure, traversals, invariants, LCA."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.schema.tree import FieldKind, SchemaNode, depth_of, lowest_common_ancestor


@pytest.fixture()
def sample_tree():
    """A miniature of the paper's Vacations tree (Figure 2)."""
    adults = SchemaNode("Adults", cluster="c_adult", name="adults")
    seniors = SchemaNode("Seniors", cluster="c_senior", name="seniors")
    children = SchemaNode("Children", cluster="c_child", name="children")
    people = SchemaNode(
        "How many people are going?", [adults, seniors, children], name="people"
    )
    frm = SchemaNode("Departing from", cluster="c_depart", name="from")
    to = SchemaNode("Going to", cluster="c_dest", name="to")
    where = SchemaNode("Where and when?", [frm, to], name="where")
    root = SchemaNode(None, [where, people], name="root")
    return root


class TestStructure:
    def test_leaves_in_order(self, sample_tree):
        assert [l.name for l in sample_tree.leaves()] == [
            "from", "to", "adults", "seniors", "children"
        ]

    def test_internal_nodes(self, sample_tree):
        assert [n.name for n in sample_tree.internal_nodes()] == [
            "root", "where", "people"
        ]

    def test_parent_pointers(self, sample_tree):
        where = sample_tree.find_by_name("where")
        assert where.parent is sample_tree
        assert sample_tree.find_by_name("adults").parent.name == "people"

    def test_height_and_depth(self, sample_tree):
        assert sample_tree.height() == 3
        assert depth_of(sample_tree) == 3
        assert SchemaNode("leaf").height() == 1

    def test_size(self, sample_tree):
        assert sample_tree.size() == 8

    def test_predicates(self, sample_tree):
        assert sample_tree.find_by_name("adults").is_leaf
        assert sample_tree.find_by_name("people").is_internal
        assert not SchemaNode(None).is_labeled
        assert not SchemaNode("  ").is_labeled
        assert SchemaNode("Adults").is_labeled

    def test_descendant_leaf_clusters(self, sample_tree):
        people = sample_tree.find_by_name("people")
        assert people.descendant_leaf_clusters() == {
            "c_adult", "c_senior", "c_child"
        }

    def test_ancestors(self, sample_tree):
        adults = sample_tree.find_by_name("adults")
        assert [a.name for a in adults.ancestors()] == ["people", "root"]


class TestMutation:
    def test_add_child_sets_parent(self):
        root = SchemaNode(None, name="r")
        child = SchemaNode("x", name="c")
        root.add_child(child)
        assert child.parent is root
        assert root.children == [child]

    def test_add_child_at_index(self):
        a, b, c = SchemaNode("a"), SchemaNode("b"), SchemaNode("c")
        root = SchemaNode(None, [a, c])
        root.add_child(b, index=1)
        assert [n.label for n in root.children] == ["a", "b", "c"]

    def test_remove_child(self):
        child = SchemaNode("x")
        root = SchemaNode(None, [child])
        root.remove_child(child)
        assert root.children == [] and child.parent is None

    def test_replace_child_preserves_order(self):
        a, b, c = SchemaNode("a"), SchemaNode("b"), SchemaNode("c")
        root = SchemaNode(None, [a, b])
        root.replace_child(b, c)
        assert [n.label for n in root.children] == ["a", "c"]
        assert c.parent is root and b.parent is None


class TestValidate:
    def test_valid_tree_passes(self, sample_tree):
        sample_tree.validate()

    def test_duplicate_node_rejected(self):
        shared = SchemaNode("x")
        root = SchemaNode(None, [shared])
        root.children.append(shared)  # simulate corruption
        with pytest.raises(ValueError, match="twice"):
            root.validate()

    def test_stale_parent_rejected(self):
        child = SchemaNode("x")
        root = SchemaNode(None, [child])
        child.parent = None
        with pytest.raises(ValueError, match="stale"):
            root.validate()

    def test_internal_with_kind_rejected(self):
        node = SchemaNode("x", [SchemaNode("y")])
        node.kind = FieldKind.TEXT_BOX
        with pytest.raises(ValueError, match="field kind"):
            node.validate()


class TestCopy:
    def test_copy_is_deep(self, sample_tree):
        clone = sample_tree.copy()
        clone.find_by_name("adults").label = "CHANGED"
        assert sample_tree.find_by_name("adults").label == "Adults"

    def test_copy_preserves_payload(self, sample_tree):
        clone = sample_tree.copy()
        assert clone.size() == sample_tree.size()
        assert [l.cluster for l in clone.leaves()] == [
            l.cluster for l in sample_tree.leaves()
        ]
        clone.validate()


class TestLca:
    def test_lca_of_siblings(self, sample_tree):
        a = sample_tree.find_by_name("adults")
        s = sample_tree.find_by_name("seniors")
        assert lowest_common_ancestor([a, s]).name == "people"

    def test_lca_across_groups(self, sample_tree):
        a = sample_tree.find_by_name("adults")
        f = sample_tree.find_by_name("from")
        assert lowest_common_ancestor([a, f]).name == "root"

    def test_lca_of_node_and_ancestor(self, sample_tree):
        a = sample_tree.find_by_name("adults")
        p = sample_tree.find_by_name("people")
        assert lowest_common_ancestor([a, p]).name == "people"

    def test_lca_empty(self):
        assert lowest_common_ancestor([]) is None


def _random_tree(rng: random.Random, size: int) -> SchemaNode:
    nodes = [SchemaNode(f"n{i}", name=f"n{i}") for i in range(size)]
    root = nodes[0]
    for node in nodes[1:]:
        rng.choice(nodes[: nodes.index(node)]).add_child(node)
    return root


@given(st.integers(min_value=1, max_value=40), st.integers())
def test_random_trees_walk_covers_all(size, seed):
    rng = random.Random(seed)
    root = _random_tree(rng, size)
    root.validate()
    assert root.size() == size
    walked = list(root.walk())
    assert len(walked) == size
    assert len(root.leaves()) + len(root.internal_nodes()) == size


@given(st.integers(min_value=2, max_value=30), st.integers())
def test_random_trees_lca_is_common_ancestor(size, seed):
    rng = random.Random(seed)
    root = _random_tree(rng, size)
    leaves = root.leaves()
    pick = rng.sample(leaves, min(2, len(leaves)))
    lca = lowest_common_ancestor(pick)
    assert lca is not None
    for node in pick:
        assert lca is node or lca in list(node.ancestors())
