"""DOT rendering of schema trees."""

from __future__ import annotations

from repro.schema.interface import make_field, make_group
from repro.schema.tree import SchemaNode
from repro.viz import to_dot, write_dot


def _tree():
    return SchemaNode(None, [
        make_group("Passengers", [
            make_field("Adults", cluster="c_adult", name="a"),
            make_field(None, cluster="c_child", name="c"),
        ], name="g"),
    ], name="root")


class TestToDot:
    def test_structure(self):
        dot = to_dot(_tree(), title="Demo")
        assert dot.startswith("digraph schema_tree {")
        assert dot.rstrip().endswith("}")
        assert 'label="Demo"' in dot
        # 4 nodes, 3 edges.
        assert dot.count("->") == 3
        assert dot.count("shape=box") == 2
        assert dot.count("shape=ellipse") == 2

    def test_cluster_annotation(self):
        dot = to_dot(_tree())
        assert "[c_adult]" in dot

    def test_unlabeled_nodes_dashed(self):
        dot = to_dot(_tree())
        assert "dashed" in dot
        assert "(no label)" in dot

    def test_escaping(self):
        root = SchemaNode(None, [make_field('He said "hi" \\ bye', name="x")],
                          name="r")
        dot = to_dot(root)
        assert '\\"hi\\"' in dot and "\\\\" in dot

    def test_write_dot(self, tmp_path):
        target = tmp_path / "tree.dot"
        write_dot(_tree(), target, title="T")
        assert target.read_text().startswith("digraph")

    def test_renders_full_domain(self):
        from repro import run_domain

        run = run_domain("job", seed=0, respondent_count=1)
        dot = to_dot(run.labeling.root)
        assert dot.count("->") == run.labeling.root.size() - 1
