"""MiniWordNet: synsets, synonymy, transitive hypernymy, morphy integration."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lexicon.wordnet import MiniWordNet


@pytest.fixture()
def wn():
    net = MiniWordNet()
    net.add_synset(["car", "auto", "automobile"])
    net.add_synset(["vehicle"])
    net.add_synset(["sedan"])
    net.add_hypernym("vehicle", "car")
    net.add_hypernym("car", "sedan")
    return net


class TestSynonymy:
    def test_shared_synset(self, wn):
        assert wn.are_synonyms("car", "auto")
        assert wn.are_synonyms("auto", "automobile")

    def test_symmetric(self, wn):
        assert wn.are_synonyms("auto", "car") == wn.are_synonyms("car", "auto")

    def test_same_word_not_synonym(self, wn):
        assert not wn.are_synonyms("car", "car")
        assert not wn.are_synonyms("car", "Cars")  # same base form

    def test_unknown_words(self, wn):
        assert not wn.are_synonyms("car", "spaceship")
        assert not wn.are_synonyms("x", "y")

    def test_inflected_forms_resolve(self, wn):
        assert wn.are_synonyms("cars", "autos")


class TestHypernymy:
    def test_direct(self, wn):
        assert wn.is_hypernym("vehicle", "car")
        assert wn.is_hypernym("car", "sedan")

    def test_transitive(self, wn):
        assert wn.is_hypernym("vehicle", "sedan")

    def test_not_reflexive_or_inverted(self, wn):
        assert not wn.is_hypernym("car", "vehicle")
        assert not wn.is_hypernym("sedan", "vehicle")
        assert not wn.is_hypernym("car", "car")

    def test_synonym_inherits_hypernyms(self, wn):
        # "auto" shares the car synset, so vehicle is its hypernym too.
        assert wn.is_hypernym("vehicle", "auto")

    def test_cache_invalidated_on_mutation(self, wn):
        assert not wn.is_hypernym("vehicle", "bicycle")
        wn.add_hypernym("vehicle", "bicycle")
        assert wn.is_hypernym("vehicle", "bicycle")

    def test_cycle_does_not_hang(self):
        net = MiniWordNet()
        net.add_synset(["a"])
        net.add_synset(["b"])
        net.add_hypernym("a", "b")
        net.add_hypernym("b", "a")
        assert net.is_hypernym("a", "b")
        assert net.is_hypernym("b", "a")


class TestConstruction:
    def test_duplicate_synset_returns_existing_id(self):
        net = MiniWordNet()
        first = net.add_synset(["x", "y"])
        second = net.add_synset(["Y", "X"])  # case-insensitive
        assert first == second
        assert len(net) == 1

    def test_empty_synset_rejected(self):
        with pytest.raises(ValueError):
            MiniWordNet().add_synset([])

    def test_add_hypernym_creates_missing_lemmas(self):
        net = MiniWordNet()
        net.add_hypernym("animal", "dog")
        assert net.is_known("animal") and net.is_known("dog")
        assert net.is_hypernym("animal", "dog")

    def test_bad_synset_id_rejected(self, wn):
        with pytest.raises(KeyError):
            wn.add_hypernym(999, "car")

    def test_contains_uses_base_form(self, wn):
        assert "cars" in wn
        assert "spaceship" not in wn

    def test_synsets_of(self, wn):
        synsets = wn.synsets_of("auto")
        assert len(synsets) == 1
        assert "car" in synsets[0]

    def test_load_bulk(self):
        net = MiniWordNet()
        net.load([["p", "q"], ["r"]], [("r", "p")])
        assert net.are_synonyms("p", "q")
        assert net.is_hypernym("r", "q")


@given(
    st.lists(
        st.lists(
            st.text(alphabet="abcdefgh", min_size=1, max_size=4),
            min_size=1,
            max_size=3,
        ),
        min_size=1,
        max_size=6,
    )
)
def test_synonymy_is_symmetric_property(synsets):
    net = MiniWordNet()
    for lemmas in synsets:
        net.add_synset(lemmas)
    words = sorted({w for lemmas in synsets for w in lemmas})
    for a in words:
        for b in words:
            assert net.are_synonyms(a, b) == net.are_synonyms(b, a)


@given(
    st.lists(
        st.tuples(
            st.text(alphabet="abcd", min_size=1, max_size=3),
            st.text(alphabet="abcd", min_size=1, max_size=3),
        ),
        max_size=8,
    )
)
def test_hypernymy_is_transitive_property(edges):
    net = MiniWordNet()
    for general, specific in edges:
        if general != specific:
            net.add_hypernym(general, specific)
    words = sorted({w for pair in edges for w in pair})
    for a in words:
        for b in words:
            for c in words:
                if (
                    net.is_hypernym(a, b)
                    and net.is_hypernym(b, c)
                    and net.lemma_base(a) != net.lemma_base(c)
                ):
                    assert net.is_hypernym(a, c)


class TestLexiconIO:
    """JSON load/save of lexicon data (repro.lexicon.io)."""

    def test_round_trip_default_data(self, tmp_path):
        from repro.lexicon.io import load_wordnet, save_wordnet_data

        path = tmp_path / "lexicon.json"
        save_wordnet_data(path)
        restored = load_wordnet(path, extend_default=False)
        assert restored.are_synonyms("area", "field")
        assert restored.is_hypernym("location", "city")

    def test_extend_default(self, tmp_path):
        import json

        from repro.lexicon.io import load_wordnet

        path = tmp_path / "extra.json"
        path.write_text(json.dumps({
            "synsets": [["course", "class"]],
            "hypernyms": [["person", "instructor"]],
        }))
        wordnet = load_wordnet(path)
        assert wordnet.are_synonyms("course", "class")
        assert wordnet.is_hypernym("person", "instructor")
        # Built-in data still present.
        assert wordnet.are_synonyms("area", "field")

    def test_standalone_file(self, tmp_path):
        import json

        from repro.lexicon.io import load_wordnet

        path = tmp_path / "solo.json"
        path.write_text(json.dumps({"synsets": [["a", "b"]]}))
        wordnet = load_wordnet(path, extend_default=False)
        assert wordnet.are_synonyms("a", "b")
        assert not wordnet.is_known("area")

    def test_bad_hypernym_entry_rejected(self):
        import pytest as _pytest

        from repro.lexicon.io import wordnet_from_dict

        with _pytest.raises(ValueError, match="pairs"):
            wordnet_from_dict({"hypernyms": [["a", "b", "c"]]})

    def test_non_object_rejected(self, tmp_path):
        import pytest as _pytest

        from repro.lexicon.io import load_wordnet

        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with _pytest.raises(ValueError, match="JSON object"):
            load_wordnet(path)


class TestShareHypernym:
    def test_co_hyponyms(self):
        from repro.lexicon.data import build_default_wordnet

        wn = build_default_wordnet()
        assert wn.share_hypernym("adult", "senior")       # both under person
        assert wn.share_hypernym("city", "state")         # both under location
        assert not wn.share_hypernym("adult", "price")
        assert not wn.share_hypernym("adult", "nonsenseword")
